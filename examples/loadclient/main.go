// Load-driving client for mwvc-serve: uploads a couple of generated graphs
// once (content addressing makes re-uploads free), then fires a burst of
// concurrent solve requests across algorithms and seeds, retrying 429
// backpressure and 503 transients with jittered exponential backoff (any
// Retry-After the server sends is honored as the floor), and reports
// latency, cache-hit, degraded-response and error statistics.
//
// Run the server, then the client:
//
//	go run ./cmd/mwvc-serve &
//	go run ./examples/loadclient -addr http://localhost:8437 -requests 256 -concurrency 64
//
// With -deadline set, a fraction of the requests (-deadline-frac) carry an
// improve_budget_ms anytime-improvement budget, exercising the deadline
// path under concurrency; the report then splits latency per class and adds
// the mean weight improvement the budget bought.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	mwvc "repro"
)

type graphResponse struct {
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

type solveResponse struct {
	ID       string         `json:"id"`
	Status   string         `json:"status"`
	Cached   bool           `json:"cached"`
	Degraded bool           `json:"degraded"`
	Solution *mwvc.Solution `json:"solution"`
	Error    string         `json:"error"`
}

// retryDelay computes the next backoff sleep: the current exponential step
// with half-to-full jitter (decorrelating the herd a burst of 429s creates),
// floored at whatever Retry-After the server sent.
func retryDelay(backoff time.Duration, retryAfter string) time.Duration {
	delay := backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		if floor := time.Duration(secs) * time.Second; delay < floor {
			delay = floor
		}
	}
	return delay
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8437", "mwvc-serve base URL")
		requests    = flag.Int("requests", 256, "total solve requests to send")
		concurrency = flag.Int("concurrency", 64, "concurrent in-flight requests")
		n           = flag.Int("n", 2000, "vertices per generated instance")
		d           = flag.Float64("d", 16, "average degree per generated instance")
		seeds       = flag.Int("seeds", 8, "distinct seeds (lower = more cache hits)")
		deadline    = flag.Duration("deadline", 0, "anytime improvement budget to send on a fraction of requests (0 = plain traffic only)")
		deadlineFr  = flag.Float64("deadline-frac", 0.5, "fraction of requests that carry the -deadline improvement budget")
	)
	flag.Parse()
	if *seeds < 1 {
		*seeds = 1
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	// Upload two instances; solve requests refer to them by content hash.
	var hashes []string
	for seed := uint64(1); seed <= 2; seed++ {
		g := mwvc.RandomGraph(seed, *n, *d)
		var buf bytes.Buffer
		if err := mwvc.WriteGraph(&buf, g); err != nil {
			fatal(err)
		}
		resp, err := client.Post(*addr+"/v1/graphs", "text/plain", &buf)
		if err != nil {
			fatal(err)
		}
		var gr graphResponse
		if err := decode(resp, &gr); err != nil {
			fatal(fmt.Errorf("upload: %w", err))
		}
		fmt.Printf("graph %s: n=%d m=%d\n", gr.Graph[:23]+"…", gr.Vertices, gr.Edges)
		hashes = append(hashes, gr.Graph)
	}

	algos := []string{"mpc", "centralized", "pdfast", "bye", "greedy"}
	// Every tierStride-th request names the fast tier instead of an
	// algorithm, exercising the server-side tier→algorithm resolution (and
	// its cache-key sharing with explicit pdfast requests). A stride keeps
	// the mix exact and the run reproducible.
	const tierStride = 7
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, *concurrency)
		mu       sync.Mutex
		byClass  = map[string][]time.Duration{}
		improved []float64 // weight reduction percent per deadline request
		cached   atomic.Int64
		degraded atomic.Int64
		retries  atomic.Int64
		failures atomic.Int64
	)
	// In -deadline mode, every deadlineStride-th request carries the budget;
	// a stride (not a coin flip) keeps the mix exact and the run reproducible.
	deadlineStride := 0
	if *deadline > 0 && *deadlineFr > 0 {
		if *deadlineFr > 1 {
			*deadlineFr = 1
		}
		deadlineStride = int(math.Round(1 / *deadlineFr))
	}
	start := time.Now()
	for i := 0; i < *requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			class := "plain"
			payload := map[string]any{
				"graph": hashes[i%len(hashes)],
				"seed":  i % *seeds,
			}
			if i%tierStride == 0 {
				payload["tier"] = "fast"
			} else {
				payload["algorithm"] = algos[i%len(algos)]
			}
			if deadlineStride > 0 && i%deadlineStride == 0 {
				class = "deadline"
				payload["improve_budget_ms"] = deadline.Milliseconds()
			}
			body, _ := json.Marshal(payload)
			t0 := time.Now()
			backoff := 50 * time.Millisecond
			const maxBackoff = 2 * time.Second
			for {
				resp, err := client.Post(*addr+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "request %d: %v\n", i, err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
					// 429 backpressure or a 503 transient (drain, injected
					// fault): back off exponentially with jitter and retry.
					ra := resp.Header.Get("Retry-After")
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					retries.Add(1)
					time.Sleep(retryDelay(backoff, ra))
					if backoff *= 2; backoff > maxBackoff {
						backoff = maxBackoff
					}
					continue
				}
				var sr solveResponse
				if err := decode(resp, &sr); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "request %d: %v\n", i, err)
					return
				}
				if sr.Status != "done" || sr.Solution == nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "request %d: status %s error %q\n", i, sr.Status, sr.Error)
					return
				}
				if sr.Cached {
					cached.Add(1)
				}
				if sr.Degraded {
					degraded.Add(1)
				}
				mu.Lock()
				byClass[class] = append(byClass[class], time.Since(t0))
				if imp := sr.Solution.Improvement; imp != nil && imp.WeightBefore > 0 {
					improved = append(improved, 100*(imp.WeightBefore-imp.WeightAfter)/imp.WeightBefore)
				}
				mu.Unlock()
				return
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	quantile := func(ls []time.Duration, q float64) time.Duration {
		if len(ls) == 0 {
			return 0
		}
		return ls[int(q*float64(len(ls)-1))]
	}
	ok := 0
	for _, ls := range byClass {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		ok += len(ls)
	}
	fmt.Printf("\n%d requests in %v (%.0f req/s): %d ok, %d failed, %d cache hits, %d degraded, %d backoff retries\n",
		*requests, elapsed.Round(time.Millisecond), float64(ok)/elapsed.Seconds(),
		ok, failures.Load(), cached.Load(), degraded.Load(), retries.Load())
	for _, class := range []string{"plain", "deadline"} {
		ls := byClass[class]
		if len(ls) == 0 {
			continue
		}
		fmt.Printf("latency[%s] n=%d p50=%v p90=%v p99=%v max=%v\n",
			class, len(ls),
			quantile(ls, 0.50).Round(time.Millisecond), quantile(ls, 0.90).Round(time.Millisecond),
			quantile(ls, 0.99).Round(time.Millisecond), quantile(ls, 1.0).Round(time.Millisecond))
	}
	if len(improved) > 0 {
		mean := 0.0
		for _, p := range improved {
			mean += p
		}
		mean /= float64(len(improved))
		fmt.Printf("improvement[%v budget]: %d solves improved, mean weight reduction %.2f%%\n",
			*deadline, len(improved), mean)
	}

	// One certified response, decoded through the Solution JSON round-trip:
	// null certified_ratio (no certificate) comes back as +Inf.
	body, _ := json.Marshal(map[string]any{"graph": hashes[0], "algorithm": "mpc"})
	resp, err := client.Post(*addr+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	var sr solveResponse
	if err := decode(resp, &sr); err != nil {
		fatal(err)
	}
	if math.IsInf(sr.Solution.CertifiedRatio, 1) {
		fmt.Printf("mpc solve: weight=%.1f (no certificate)\n", sr.Solution.Weight)
	} else {
		fmt.Printf("mpc solve: weight=%.1f certified ratio=%.3f rounds=%d\n",
			sr.Solution.Weight, sr.Solution.CertifiedRatio, sr.Solution.Rounds)
	}
}

func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadclient:", err)
	os.Exit(1)
}
