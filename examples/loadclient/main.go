// Load-driving client for mwvc-serve: uploads a couple of generated graphs
// once (content addressing makes re-uploads free), then fires a burst of
// concurrent solve requests across algorithms and seeds, retrying on 429
// backpressure, and reports latency, cache-hit and error statistics.
//
// Run the server, then the client:
//
//	go run ./cmd/mwvc-serve &
//	go run ./examples/loadclient -addr http://localhost:8437 -requests 256 -concurrency 64
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	mwvc "repro"
)

type graphResponse struct {
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

type solveResponse struct {
	ID       string         `json:"id"`
	Status   string         `json:"status"`
	Cached   bool           `json:"cached"`
	Solution *mwvc.Solution `json:"solution"`
	Error    string         `json:"error"`
}

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8437", "mwvc-serve base URL")
		requests    = flag.Int("requests", 256, "total solve requests to send")
		concurrency = flag.Int("concurrency", 64, "concurrent in-flight requests")
		n           = flag.Int("n", 2000, "vertices per generated instance")
		d           = flag.Float64("d", 16, "average degree per generated instance")
		seeds       = flag.Int("seeds", 8, "distinct seeds (lower = more cache hits)")
	)
	flag.Parse()
	if *seeds < 1 {
		*seeds = 1
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	// Upload two instances; solve requests refer to them by content hash.
	var hashes []string
	for seed := uint64(1); seed <= 2; seed++ {
		g := mwvc.RandomGraph(seed, *n, *d)
		var buf bytes.Buffer
		if err := mwvc.WriteGraph(&buf, g); err != nil {
			fatal(err)
		}
		resp, err := client.Post(*addr+"/v1/graphs", "text/plain", &buf)
		if err != nil {
			fatal(err)
		}
		var gr graphResponse
		if err := decode(resp, &gr); err != nil {
			fatal(fmt.Errorf("upload: %w", err))
		}
		fmt.Printf("graph %s: n=%d m=%d\n", gr.Graph[:23]+"…", gr.Vertices, gr.Edges)
		hashes = append(hashes, gr.Graph)
	}

	algos := []string{"mpc", "centralized", "bye", "greedy"}
	var (
		wg        sync.WaitGroup
		sem       = make(chan struct{}, *concurrency)
		mu        sync.Mutex
		latencies []time.Duration
		cached    atomic.Int64
		retries   atomic.Int64
		failures  atomic.Int64
	)
	start := time.Now()
	for i := 0; i < *requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			body, _ := json.Marshal(map[string]any{
				"graph":     hashes[i%len(hashes)],
				"algorithm": algos[i%len(algos)],
				"seed":      i % *seeds,
			})
			t0 := time.Now()
			for {
				resp, err := client.Post(*addr+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "request %d: %v\n", i, err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					// Backpressure: the queue is full. Back off and retry.
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					retries.Add(1)
					time.Sleep(50 * time.Millisecond)
					continue
				}
				var sr solveResponse
				if err := decode(resp, &sr); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "request %d: %v\n", i, err)
					return
				}
				if sr.Status != "done" || sr.Solution == nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "request %d: status %s error %q\n", i, sr.Status, sr.Error)
					return
				}
				if sr.Cached {
					cached.Add(1)
				}
				mu.Lock()
				latencies = append(latencies, time.Since(t0))
				mu.Unlock()
				return
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(q * float64(len(latencies)-1))
		return latencies[idx]
	}
	ok := len(latencies)
	fmt.Printf("\n%d requests in %v (%.0f req/s): %d ok, %d failed, %d cache hits, %d backpressure retries\n",
		*requests, elapsed.Round(time.Millisecond), float64(ok)/elapsed.Seconds(),
		ok, failures.Load(), cached.Load(), retries.Load())
	fmt.Printf("latency p50=%v p90=%v p99=%v max=%v\n",
		quantile(0.50).Round(time.Millisecond), quantile(0.90).Round(time.Millisecond),
		quantile(0.99).Round(time.Millisecond), quantile(1.0).Round(time.Millisecond))

	// One certified response, decoded through the Solution JSON round-trip:
	// null certified_ratio (no certificate) comes back as +Inf.
	body, _ := json.Marshal(map[string]any{"graph": hashes[0], "algorithm": "mpc"})
	resp, err := client.Post(*addr+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	var sr solveResponse
	if err := decode(resp, &sr); err != nil {
		fatal(err)
	}
	if math.IsInf(sr.Solution.CertifiedRatio, 1) {
		fmt.Printf("mpc solve: weight=%.1f (no certificate)\n", sr.Solution.Weight)
	} else {
		fmt.Printf("mpc solve: weight=%.1f certified ratio=%.3f rounds=%d\n",
			sr.Solution.Weight, sr.Solution.CertifiedRatio, sr.Solution.Rounds)
	}
}

func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadclient:", err)
	os.Exit(1)
}
