// Social-network monitoring: place monitors on a power-law graph so every
// relationship (edge) has at least one monitored endpoint, minimizing total
// monitoring cost. Hubs are expensive to monitor (cost grows with degree),
// which is exactly the weighted regime where unweighted vertex-cover
// algorithms give no guarantee — the gap this paper closes.
//
// The example compares the MPC algorithm against the sequential baselines
// on quality (certified ratio) and on communication rounds.
package main

import (
	"context"

	"fmt"
	"log"
	"math"
	"time"

	mwvc "repro"
)

func main() {
	const (
		users = 20000
		links = 8 // preferential-attachment links per new user
	)
	// Build the power-law social graph through the public builder: a simple
	// preferential-attachment process over a running endpoint list.
	fmt.Printf("building a %d-user power-law network...\n", users)
	b := mwvc.NewBuilder(users)
	endpoints := []mwvc.Vertex{0}
	rngState := uint64(12345)
	next := func(n int) int {
		// xorshift64* — deterministic, dependency-free.
		rngState ^= rngState >> 12
		rngState ^= rngState << 25
		rngState ^= rngState >> 27
		return int((rngState * 0x2545F4914F6CDD1D) >> 33 % uint64(n))
	}
	degree := make([]int, users)
	for v := 1; v < users; v++ {
		attach := links
		if v < links {
			attach = v
		}
		seen := map[mwvc.Vertex]bool{}
		for len(seen) < attach {
			u := endpoints[next(len(endpoints))]
			if u != mwvc.Vertex(v) && !seen[u] {
				seen[u] = true
				b.AddEdge(mwvc.Vertex(v), u)
				degree[u]++
				degree[v]++
				endpoints = append(endpoints, u)
			}
		}
		endpoints = append(endpoints, mwvc.Vertex(v))
	}
	// Monitoring cost: roughly linear in connectivity (hubs host more
	// traffic), with a floor of 1.
	for v := 0; v < users; v++ {
		b.SetWeight(mwvc.Vertex(v), 1+math.Sqrt(float64(degree[v])))
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d, m=%d, max degree=%d, avg degree=%.1f\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree(), g.AverageDegree())

	for _, algo := range []mwvc.Algorithm{mwvc.AlgoMPC, mwvc.AlgoCentralized, mwvc.AlgoBYE, mwvc.AlgoGreedy} {
		start := time.Now()
		sol, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(algo), mwvc.WithEpsilon(0.1), mwvc.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-14s cost=%10.1f", algo, sol.Weight)
		if sol.Bound > 0 {
			line += fmt.Sprintf("  certified ≤ %.3f×OPT", sol.CertifiedRatio)
		} else {
			line += "  (no guarantee)     "
		}
		if sol.Rounds > 0 {
			line += fmt.Sprintf("  rounds=%3d", sol.Rounds)
		}
		fmt.Printf("%s  [%v]\n", line, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nThe MPC run finishes in a handful of rounds regardless of the")
	fmt.Println("network's density — that is the O(log log d) round compression.")
}
