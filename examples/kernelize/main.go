// Kernelize: solve a 120-vertex instance *exactly*, even though the exact
// branch-and-bound solver only accepts 64 vertices — because the weighted
// reduction rules shrink the graph to a 24-vertex kernel first, and the
// Reduce→Solve→Lift pipeline (on by default) routes exact through it.
package main

import (
	"context"
	"fmt"
	"log"

	mwvc "repro"
)

func main() {
	// The instance: a 24-cycle "core" that no reduction rule can touch
	// (alternating weights 4 and 6 defeat the pendant, neighborhood-weight
	// and domination rules), plus a pendant-heavy fringe — 16 hubs of
	// weight 3, each tied to the core and carrying 5 leaves of weight 7.
	// Real-world sparse graphs look like this: a hard core, a wide fringe.
	const (
		core   = 24
		hubs   = 16
		leaves = 5
		n      = core + hubs + hubs*leaves // 120 vertices
	)
	b := mwvc.NewBuilder(n)
	for i := 0; i < core; i++ {
		b.SetWeight(mwvc.Vertex(i), float64(4+2*(i%2)))
		b.AddEdge(mwvc.Vertex(i), mwvc.Vertex((i+1)%core))
	}
	for h := 0; h < hubs; h++ {
		hub := mwvc.Vertex(core + h)
		b.SetWeight(hub, 3)
		b.AddEdge(hub, mwvc.Vertex(h)) // tie the fringe to the core
		for l := 0; l < leaves; l++ {
			leaf := mwvc.Vertex(core + hubs + h*leaves + l)
			b.SetWeight(leaf, 7)
			b.AddEdge(hub, leaf)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: n=%d m=%d — exact alone handles only n ≤ 64\n", g.NumVertices(), g.NumEdges())

	// On the raw graph, exact is honestly out of reach — and the error says
	// exactly how far reduction would get us.
	_, err = mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(mwvc.AlgoExact), mwvc.WithoutReduction())
	fmt.Printf("without reduction: %v\n", err)

	// With the default pipeline, the pendant rule forces every hub (each
	// leaf of weight 7 ≥ hub weight 3), the fringe collapses, and exact
	// branch-and-bound runs on just the 24-cycle kernel.
	sol, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(mwvc.AlgoExact))
	if err != nil {
		log.Fatal(err)
	}
	r := sol.Reduction
	fmt.Printf("kernel: n %d→%d m %d→%d (pendant ×%d, isolated ×%d), forced weight %.0f\n",
		r.OriginalVertices, r.KernelVertices, r.OriginalEdges, r.KernelEdges,
		r.Pendant, r.Isolated, r.ForcedWeight)
	fmt.Printf("optimum: weight %.0f, provably exact=%v (certified ratio %.0f)\n",
		sol.Weight, sol.Exact, sol.CertifiedRatio)

	covered := 0
	for _, in := range sol.Cover {
		if in {
			covered++
		}
	}
	fmt.Printf("cover: %d of %d vertices — verified against the original graph, not the kernel\n",
		covered, g.NumVertices())
}
