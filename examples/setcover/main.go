// Set cover: the paper's Algorithm 1 descends from the Hochbaum /
// Bar-Yehuda–Even primal–dual scheme for *weighted set cover*; vertex cover
// is the frequency-2 special case. This example uses the general
// f-approximation on a sensor-deployment scenario (each site — a set —
// covers several zones — elements — and the goal is full zone coverage at
// minimum deployment cost), then shows the f=2 projection agreeing with the
// vertex-cover solvers.
package main

import (
	"context"

	"fmt"
	"log"

	mwvc "repro"
	"repro/internal/rng"
	"repro/internal/setcover"
)

func main() {
	// 60 candidate sensor sites, 200 zones; each zone is visible from 2–4
	// sites; site cost is log-uniform in [1, 100).
	const (
		sites = 60
		zones = 200
	)
	src := rng.New(2024)
	in := &setcover.Instance{
		Weights:  make([]float64, sites),
		Elements: make([][]int, zones),
	}
	for s := range in.Weights {
		in.Weights[s] = 1 + 99*src.Float64()*src.Float64()
	}
	for z := range in.Elements {
		k := 2 + src.Intn(3)
		perm := src.Perm(sites)
		in.Elements[z] = append([]int(nil), perm[:k]...)
	}

	sol, err := setcover.Solve(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := setcover.Verify(in, sol); err != nil {
		log.Fatal(err)
	}
	chosen := 0
	for _, c := range sol.Chosen {
		if c {
			chosen++
		}
	}
	fmt.Printf("sensor deployment: %d/%d sites, cost %.1f\n", chosen, sites, sol.Weight)
	fmt.Printf("frequency f = %d ⇒ certified ≤ %d× optimal (dual bound %.1f)\n\n",
		sol.Frequency, sol.Frequency, sol.Bound)

	// The f = 2 projection: encode a vertex-cover instance as set cover and
	// cross-check against the dedicated solver.
	g := mwvc.RandomGraph(5, 500, 8)
	vcAsSC, err := setcover.Solve(setcover.FromGraph(g))
	if err != nil {
		log.Fatal(err)
	}
	vc, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(mwvc.AlgoBYE))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vertex cover as set cover (f=2): weight %.1f\n", vcAsSC.Weight)
	fmt.Printf("dedicated Bar-Yehuda–Even:       weight %.1f\n", vc.Weight)
	if vcAsSC.Weight == vc.Weight {
		fmt.Println("projection agrees exactly — same local-ratio scheme, same order.")
	}
}
