// Weight ranges: why the paper's degree-aware dual initialization matters.
//
// Vertex weights spanning nine orders of magnitude model, e.g., ad-auction
// reserve prices or heterogeneous hardware costs. The classic primal–dual
// initialization x_e = 1/n needs Θ(log(nW)) rounds — the weight range W
// shows up in the round count — while the paper's x_e = min{w(u)/d(u),
// w(v)/d(v)} keeps the round count at O(log Δ) no matter how skewed the
// weights are (Proposition 3.4), which is what makes the O(log log d) MPC
// compression possible at all.
package main

import (
	"context"

	"fmt"
	"log"
	"math"

	mwvc "repro"
)

func main() {
	const n = 5000
	base := mwvc.RandomGraph(9, n, 32)

	for _, maxW := range []float64{1, 1e3, 1e9} {
		// Log-uniform weights in [1, maxW).
		b := mwvc.NewBuilder(n)
		for v := 0; v < n; v++ {
			u := hash01(uint64(v) + 77)
			b.SetWeight(mwvc.Vertex(v), math.Pow(math.Max(maxW, 2), u))
		}
		for e := 0; e < base.NumEdges(); e++ {
			x, y := base.Edge(int32(e))
			b.AddEdge(x, y)
		}
		g, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}

		aware, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(mwvc.AlgoCentralized), mwvc.WithEpsilon(0.1), mwvc.WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		uniform, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(mwvc.AlgoLocalUniform), mwvc.WithEpsilon(0.1), mwvc.WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		mpc, err := mwvc.Solve(context.Background(), g, mwvc.WithAlgorithm(mwvc.AlgoMPC), mwvc.WithEpsilon(0.1), mwvc.WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("weight range [1, %.0e):\n", maxW)
		fmt.Printf("  LOCAL rounds, degree-aware init: %4d   (O(log Δ), weight-independent)\n", aware.Rounds)
		fmt.Printf("  LOCAL rounds, uniform 1/n init:  %4d   (O(log nW), grows with W)\n", uniform.Rounds)
		fmt.Printf("  MPC rounds (paper's algorithm):  %4d   (O(log log d))\n\n", mpc.Rounds)
	}
}

func hash01(x uint64) float64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
