// Congested clique: run vertex cover on an overlay network where every node
// is its own machine and any pair may exchange only a few words per round
// (the model of Section 1.3 of the paper, enforced mechanically by the
// cluster substrate). Compares the direct O(log Δ)-round execution with the
// round count of the MPC algorithm that the [BDH18] equivalence transfers.
package main

import (
	"context"

	"fmt"
	"log"

	mwvc "repro"
)

func main() {
	// An overlay of 1500 nodes; edge = a peering conflict that must be
	// resolved by upgrading at least one endpoint; weight = upgrade cost.
	const nodes = 1500
	g := mwvc.RandomGraph(3, nodes, 24)
	// Upgrade costs in [1, 10), deterministic per node.
	b := mwvc.NewBuilder(nodes)
	for v := 0; v < nodes; v++ {
		b.SetWeight(mwvc.Vertex(v), 1+9*frac(uint64(v)*0x9E3779B97F4A7C15))
	}
	for e := 0; e < g.NumEdges(); e++ {
		u, w := g.Edge(int32(e))
		b.AddEdge(u, w)
	}
	wg, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d nodes, %d conflicts, avg degree %.1f\n\n",
		wg.NumVertices(), wg.NumEdges(), wg.AverageDegree())

	cc, err := mwvc.Solve(context.Background(), wg, mwvc.WithAlgorithm(mwvc.AlgoCongestedClique), mwvc.WithEpsilon(0.1), mwvc.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("congested clique (1 machine per node, ≤2 words per pair per round):\n")
	fmt.Printf("  cost=%.1f  certified ≤ %.3f×OPT  rounds=%d\n\n", cc.Weight, cc.CertifiedRatio, cc.Rounds)

	mpc, err := mwvc.Solve(context.Background(), wg, mwvc.WithAlgorithm(mwvc.AlgoMPC), mwvc.WithEpsilon(0.1), mwvc.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MPC simulation (√d machines, Õ(n) memory each):\n")
	fmt.Printf("  cost=%.1f  certified ≤ %.3f×OPT  rounds=%d (phases=%d)\n\n", mpc.Weight, mpc.CertifiedRatio, mpc.Rounds, mpc.Phases)

	fmt.Println("By [BDH18], each MPC round maps to O(1) congested-clique rounds, so")
	fmt.Println("the second number is (up to constants) an O(log log d) round bound")
	fmt.Println("for the same model in which the first run paid O(log Δ) rounds.")
}

func frac(x uint64) float64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}
