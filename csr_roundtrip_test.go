package mwvc_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	mwvc "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/solver"
)

// TestCSRRoundTripBitIdenticalSolutions is the representation-independence
// property test of the graph core: a graph built through the buffered
// Builder (slice path) and the same instance serialized to the streaming
// edge-list format and re-ingested through the two-pass CSR path must
// produce bit-identical Solutions for every registered algorithm and
// several seeds. Solvers key per-edge state by edge id, so this pins not
// just isomorphism but identical edge-id assignment across construction
// paths — the invariant that makes ingestion path an implementation detail.
func TestCSRRoundTripBitIdenticalSolutions(t *testing.T) {
	instances := []struct {
		name string
		g    *mwvc.Graph
	}{
		// n ≤ 64 keeps exact in play; unit weights keep ggk in play.
		{"unit-weights", gen.GnpAvgDegree(3, 48, 6)},
		{"weighted", gen.ApplyWeights(gen.GnpAvgDegree(4, 56, 5), 9, gen.UniformRange{Lo: 1, Hi: 100})},
	}
	for _, inst := range instances {
		t.Run(inst.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := graph.WriteEdgeList(&buf, inst.g); err != nil {
				t.Fatal(err)
			}
			streamed, err := graph.ReadStream(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range mwvc.Algorithms() {
				for seed := uint64(1); seed <= 3; seed++ {
					opts := []mwvc.Option{mwvc.WithAlgorithm(algo), mwvc.WithSeed(seed)}
					want, errWant := mwvc.Solve(context.Background(), inst.g, opts...)
					got, errGot := mwvc.Solve(context.Background(), streamed, opts...)
					if (errWant == nil) != (errGot == nil) {
						t.Fatalf("%s seed %d: slice err=%v, stream err=%v", algo, seed, errWant, errGot)
					}
					if errWant != nil {
						// Same unsupported-domain rejection on both paths (e.g.
						// ggk on the weighted instance) is a pass.
						if !errors.Is(errWant, solver.ErrUnsupported) || errWant.Error() != errGot.Error() {
							t.Fatalf("%s seed %d: errors differ: %v vs %v", algo, seed, errWant, errGot)
						}
						continue
					}
					assertSameSolution(t, string(algo), seed, want, got)
				}
			}
		})
	}
}

func assertSameSolution(t *testing.T, algo string, seed uint64, want, got *mwvc.Solution) {
	t.Helper()
	if !reflect.DeepEqual(want.Cover, got.Cover) {
		t.Fatalf("%s seed %d: covers differ", algo, seed)
	}
	// Weight/Bound/CertifiedRatio must match bit-for-bit, not within an
	// epsilon: both solves walk identical edge ids in identical order, so
	// even float summation order is the same. math.Float64bits also keeps
	// the +Inf certificate-free convention comparable.
	for _, c := range []struct {
		name      string
		want, got float64
	}{
		{"Weight", want.Weight, got.Weight},
		{"Bound", want.Bound, got.Bound},
		{"CertifiedRatio", want.CertifiedRatio, got.CertifiedRatio},
	} {
		if math.Float64bits(c.want) != math.Float64bits(c.got) {
			t.Fatalf("%s seed %d: %s differs: %v vs %v", algo, seed, c.name, c.want, c.got)
		}
	}
	if want.Rounds != got.Rounds || want.Phases != got.Phases || want.Exact != got.Exact {
		t.Fatalf("%s seed %d: accounting differs: rounds %d/%d phases %d/%d exact %v/%v",
			algo, seed, want.Rounds, got.Rounds, want.Phases, got.Phases, want.Exact, got.Exact)
	}
}
