#!/usr/bin/env bash
# Pins the README quickstart against flag drift: every `go run ./cmd/...`
# and `go run ./examples/...` command inside README.md's ```sh blocks must
# run successfully with the current binaries. Commands that need a live server (curl / localhost /
# loadclient) are covered by the CI serve-smoke job instead and are skipped
# here. A command carrying -timeout may legitimately exit nonzero on a slow
# machine — but only with the documented "deadline exceeded after N rounds"
# message; any other failure is drift and fails the check.
#
# Invoked by `make readme-check` and the CI docs job.
set -u
cd "$(dirname "$0")/.."

# The quickstart writes instance files (e.g. big.el) into the repo root;
# remove them when done — but only the ones this run created, never a
# developer's pre-existing files. Kept in sync with .gitignore.
preexisting=$(ls ./*.el instance.txt 2>/dev/null || true)
was_preexisting() {
  printf '%s\n' "$preexisting" | grep -Fxq -- "$1"
}
cleanup() {
  for f in ./*.el instance.txt; do
    [ -e "$f" ] || continue
    was_preexisting "$f" || rm -f "$f"
  done
}
trap cleanup EXIT

fail=0
ran=0
while IFS= read -r cmd; do
  case "$cmd" in
    *curl* | *localhost* | *loadclient*) continue ;;
  esac
  echo "readme-check: $cmd"
  out=$(eval "$cmd" 2>&1 >/dev/null)
  status=$?
  if [ $status -ne 0 ]; then
    case "$cmd" in
      *-timeout*)
        if printf '%s' "$out" | grep -q "deadline exceeded after"; then
          echo "readme-check:   (documented deadline exit accepted)"
          ran=$((ran + 1))
          continue
        fi
        ;;
    esac
    echo "readme-check: FAILED (exit $status): $cmd" >&2
    printf '%s\n' "$out" | tail -5 >&2
    fail=1
  fi
  ran=$((ran + 1))
done < <(awk '/^```sh/{b=1; next} /^```/{b=0} b' README.md |
  sed 's/ *|.*$//' |
  grep -E '^ *go run \./(cmd|examples)/')

# The extraction itself is part of the pin: if a README restructure stops
# producing commands, fail loudly instead of green-lighting nothing.
if [ "$ran" -lt 3 ]; then
  echo "readme-check: only $ran command(s) extracted from README.md; expected at least 3" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "readme-check: ok ($ran commands)"
