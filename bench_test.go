package mwvc_test

// The benchmark harness exposes every experiment from internal/experiments
// as a testing.B target (one per table/claim of the paper — see DESIGN.md's
// per-experiment index) plus per-algorithm micro-benchmarks. The experiment
// benches run the quick configuration; the full tables in EXPERIMENTS.md
// come from `go run ./cmd/mwvc-bench`.

import (
	"context"

	"testing"

	mwvc "repro"
	"repro/internal/baselines"
	"repro/internal/centralized"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Config{Quick: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1RoundsVsDegree(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2ApproxRatio(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3MachineMemory(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4DegreeDecay(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5CentralizedIters(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6Coupling(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7VsLocalBaseline(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8DualitySandwich(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkE9CongestedClique(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10Ablations(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11GlobalMemory(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12Throughput(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13Unweighted(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14Koenig(b *testing.B)          { benchExperiment(b, "E14") }

// ---- per-algorithm micro-benchmarks on a shared midsize workload ----

func benchGraph(n int, d float64) *graph.Graph {
	return gen.ApplyWeights(gen.GnpAvgDegree(1, n, d), 2, gen.UniformRange{Lo: 1, Hi: 100})
}

func BenchmarkAlgorithmMPC(b *testing.B) {
	for _, size := range []struct {
		name string
		n    int
		d    float64
	}{{"n4k_d32", 4000, 32}, {"n16k_d64", 16000, 64}, {"n16k_d256", 16000, 256}} {
		b.Run(size.name, func(b *testing.B) {
			g := benchGraph(size.n, size.d)
			b.ResetTimer()
			rounds := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Run(context.Background(), g, core.ParamsPractical(0.1, uint64(i)+1))
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(g.NumEdges())/1e6, "Medges")
		})
	}
}

func BenchmarkAlgorithmCentralized(b *testing.B) {
	g := benchGraph(16000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := centralized.Run(context.Background(), centralized.Instance{G: g}, centralized.Options{Epsilon: 0.1, Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithmBYE(b *testing.B) {
	g := benchGraph(16000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.BarYehudaEven(g)
	}
}

func BenchmarkAlgorithmGreedy(b *testing.B) {
	g := benchGraph(4000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.Greedy(g)
	}
}

func BenchmarkFacadeSolve(b *testing.B) {
	g := mwvc.RandomGraph(1, 4000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mwvc.Solve(context.Background(), g, mwvc.WithSeed(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}
