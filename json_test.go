package mwvc

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestSolutionJSONCertificateFree is the regression test for the +Inf
// encoding bug: encoding/json rejects math.Inf, so a certificate-free
// solution (greedy) used to make any JSON serialization of a Solution fail
// with "unsupported value: +Inf". The convention now crosses the wire as a
// null certified_ratio and is restored on decode.
func TestSolutionJSONCertificateFree(t *testing.T) {
	g := RandomGraph(1, 50, 4)
	sol, err := Solve(context.Background(), g, WithAlgorithm(AlgoGreedy), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(sol.CertifiedRatio, 1) {
		t.Fatalf("greedy CertifiedRatio = %v, want +Inf (test premise)", sol.CertifiedRatio)
	}
	data, err := json.Marshal(sol)
	if err != nil {
		t.Fatalf("marshal of certificate-free solution failed: %v", err)
	}
	if !strings.Contains(string(data), `"certified_ratio":null`) {
		t.Fatalf("certificate-free ratio not encoded as null: %s", data)
	}
	var back Solution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.CertifiedRatio, 1) {
		t.Fatalf("round-trip lost the +Inf convention: got %v", back.CertifiedRatio)
	}
	if back.Weight != sol.Weight || len(back.Cover) != len(sol.Cover) {
		t.Fatalf("round-trip mutated solution: weight %v→%v cover %d→%d",
			sol.Weight, back.Weight, len(sol.Cover), len(back.Cover))
	}
}

// TestSolutionJSONRoundTrip pins the wire format for a certified solution:
// every field survives, the finite ratio encodes as a number, and a Solution
// embedded in a larger response struct (the service's case) encodes too.
func TestSolutionJSONRoundTrip(t *testing.T) {
	g := RandomGraph(2, 80, 6)
	sol, err := Solve(context.Background(), g, WithAlgorithm(AlgoMPC), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(sol.CertifiedRatio, 0) {
		t.Fatalf("mpc returned no certificate (test premise broken)")
	}
	type response struct {
		ID       string    `json:"id"`
		Solution *Solution `json:"solution"`
	}
	data, err := json.Marshal(response{ID: "s-1", Solution: sol})
	if err != nil {
		t.Fatalf("marshal of embedded solution failed: %v", err)
	}
	var back response
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got := back.Solution
	if got.Weight != sol.Weight || got.Bound != sol.Bound ||
		got.CertifiedRatio != sol.CertifiedRatio ||
		got.Rounds != sol.Rounds || got.Phases != sol.Phases || got.Exact != sol.Exact {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, sol)
	}
	for i := range sol.Cover {
		if got.Cover[i] != sol.Cover[i] {
			t.Fatalf("cover bit %d flipped in round-trip", i)
		}
	}
}

// TestSolutionJSONExact pins that an exact optimum (ratio 1, Exact true)
// keeps its finite ratio and exact flag on the wire.
func TestSolutionJSONExact(t *testing.T) {
	g := RandomGraph(3, 20, 3)
	sol, err := Solve(context.Background(), g, WithAlgorithm(AlgoExact), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sol)
	if err != nil {
		t.Fatal(err)
	}
	var back Solution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Exact || back.CertifiedRatio != 1 {
		t.Fatalf("exact solution round-trip: exact=%v ratio=%v", back.Exact, back.CertifiedRatio)
	}
}
